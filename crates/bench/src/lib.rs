//! Shared output helpers for the figure/table harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig10` | Figure 10a/10b — port-contention latencies, mul vs div victim |
//! | `fig11` | Figure 11 — Td1 probe latencies across three replays |
//! | `table1` | Table 1 — side-channel taxonomy, measured |
//! | `table_defenses` | §8 — countermeasure evaluation |
//! | `sec7_handles` | §7 — TSX-abort and mispredict replay handles |
//! | `sec7_rdrand` | §7.2 — RDRAND biasing vs the fence |
//! | `aes_trace` | §6.2 — full single-run AES access-trace extraction |
//! | `ablate_walk` | §4.1.2 — speculation-window size vs walk tuning |
//! | `sec8_analyze` | static attack-plan analysis, validated in-simulator |
//! | `perf_bench` | simulator perf trajectory — emits `BENCH_replay.json` |

pub mod json;

/// Renders a latency series as a compact ASCII scatter summary: count per
/// bucket, plus min/median/p99/max.
pub fn summarize_latencies(name: &str, samples: &[u64]) -> String {
    if samples.is_empty() {
        return format!("{name}: (no samples)");
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let pct = |p: f64| sorted[((p * (sorted.len() - 1) as f64).round()) as usize];
    format!(
        "{name}: n={} min={} p50={} p99={} max={}",
        samples.len(),
        sorted[0],
        pct(0.50),
        pct(0.99),
        sorted[sorted.len() - 1],
    )
}

/// Renders an ASCII histogram with the given bucket width.
pub fn histogram(samples: &[u64], bucket: u64, max_rows: usize) -> String {
    if samples.is_empty() {
        return String::from("(empty)\n");
    }
    let max = *samples.iter().max().expect("non-empty");
    let buckets = (max / bucket + 1).min(max_rows as u64);
    let mut counts = vec![0usize; buckets as usize];
    let mut overflow = 0usize;
    for s in samples {
        let b = s / bucket;
        if (b as usize) < counts.len() {
            counts[b as usize] += 1;
        } else {
            overflow += 1;
        }
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, c) in counts.iter().enumerate() {
        let bar = "#".repeat((c * 60).div_ceil(peak).min(60));
        out.push_str(&format!(
            "{:>6}-{:<6} {:>6} {}\n",
            i as u64 * bucket,
            (i as u64 + 1) * bucket - 1,
            c,
            bar
        ));
    }
    if overflow > 0 {
        out.push_str(&format!("   (+{overflow} beyond range)\n"));
    }
    out
}

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// `--trace-out` / `--metrics-out` flags shared by the figure binaries.
///
/// When either is set the binary enables the cross-layer probe, runs the
/// attack, and writes the Chrome trace-event JSON (Perfetto-loadable) and/or
/// the JSONL metric dump of the resulting
/// [`AttackReport`](microscope_core::AttackReport).
#[derive(Clone, Debug, Default)]
pub struct ExportFlags {
    /// Destination for the Chrome-trace JSON (`--trace-out PATH`).
    pub trace_out: Option<std::path::PathBuf>,
    /// Destination for the JSONL metric dump (`--metrics-out PATH`).
    pub metrics_out: Option<std::path::PathBuf>,
}

/// A command-line parsing failure, reported by the library and turned
/// into an exit code by the binary (library code never calls
/// `process::exit`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A flag that requires a value was last on the line or followed by
    /// another flag.
    MissingValue {
        /// The flag missing its value.
        flag: String,
    },
    /// A flag's value did not parse.
    InvalidValue {
        /// The offending flag.
        flag: String,
        /// What was given.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue { flag } => {
                write!(f, "parsing {flag} failed: a value must follow it")
            }
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(
                f,
                "parsing {flag} failed: got {value:?}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ArgError {}

/// Writing an export artifact failed.
#[derive(Debug)]
pub struct ExportError {
    /// The destination that could not be written.
    pub path: std::path::PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "export to {} failed: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Unwraps a parse result or exits with code 2 and the error on stderr —
/// the *binaries'* policy for [`ArgError`], kept out of the parsing code.
pub fn parse_or_exit<T>(result: Result<T, ArgError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Pulls one valued flag (`--flag V` or `--flag=V`) out of `args`,
/// removing it. A following `--`-prefixed token or end-of-args is a
/// [`ArgError::MissingValue`], not a silent swallow.
pub fn extract_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ArgError> {
    let prefix = format!("{flag}=");
    let mut found = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            args.remove(i);
            if i >= args.len() || args[i].starts_with("--") {
                return Err(ArgError::MissingValue { flag: flag.into() });
            }
            found = Some(args.remove(i));
        } else if let Some(v) = args[i].strip_prefix(&prefix) {
            found = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(found)
}

/// Removes a boolean flag (`--flag`) from `args`, returning whether it
/// was present (any number of occurrences collapses to one).
pub fn extract_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Extracts `--jobs N` / `--jobs=N` (the sweep worker count). `None`
/// means the flag was absent and the sweep default (available
/// parallelism) applies.
pub fn extract_jobs(args: &mut Vec<String>) -> Result<Option<usize>, ArgError> {
    match extract_flag_value(args, "--jobs")? {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(ArgError::InvalidValue {
                flag: "--jobs".into(),
                value: v,
                expected: "a worker count >= 1",
            }),
        },
    }
}

impl ExportFlags {
    /// Extracts the export flags from `args` (removing them), leaving
    /// unrelated arguments for the binary's own parser. A dangling
    /// `--trace-out`/`--metrics-out` with no PATH is an error.
    pub fn extract(args: &mut Vec<String>) -> Result<ExportFlags, ArgError> {
        Ok(ExportFlags {
            trace_out: extract_flag_value(args, "--trace-out")?.map(Into::into),
            metrics_out: extract_flag_value(args, "--metrics-out")?.map(Into::into),
        })
    }

    /// Whether any export was requested (tracing must then be enabled).
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// The recorder configuration implied by the flags: `Some` (enabled)
    /// when an export destination was given, `None` otherwise.
    pub fn recorder(&self) -> Option<microscope_probe::RecorderConfig> {
        self.active()
            .then(microscope_probe::RecorderConfig::default)
    }

    /// Writes the report's trace and metrics to the requested paths.
    pub fn export(&self, report: &microscope_core::AttackReport) -> Result<(), ExportError> {
        self.export_with(report, &microscope_probe::MetricSet::new())
    }

    /// Like [`export`](Self::export), but merges `extra` metrics (e.g. a
    /// sweep's aggregated registry) into the metric dump.
    pub fn export_with(
        &self,
        report: &microscope_core::AttackReport,
        extra: &microscope_probe::MetricSet,
    ) -> Result<(), ExportError> {
        let write = |path: &std::path::Path, contents: &str| {
            std::fs::write(path, contents).map_err(|source| ExportError {
                path: path.to_path_buf(),
                source,
            })
        };
        if let Some(path) = &self.trace_out {
            let json = microscope_probe::export::chrome_trace(&report.trace);
            write(path, &json)?;
            println!(
                "wrote {} trace events ({} dropped) to {}",
                report.trace.len(),
                report.dropped_events,
                path.display()
            );
        }
        if let Some(path) = &self.metrics_out {
            let mut metrics = report.metrics.clone();
            metrics.merge(extra);
            write(path, &metrics.to_jsonl())?;
            println!("wrote {} metrics to {}", metrics.len(), path.display());
        }
        Ok(())
    }
}

/// Unwraps an export result or exits with code 1 and the error on stderr.
pub fn export_or_exit(result: Result<(), ExportError>) {
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// A PASS/FAIL shape check, printed and returned.
pub fn shape_check(name: &str, ok: bool, detail: &str) -> bool {
    println!(
        "[{}] {} — {}",
        if ok { "PASS" } else { "FAIL" },
        name,
        detail
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_percentiles() {
        let s = summarize_latencies("x", &[1, 2, 3, 4, 100]);
        assert!(s.contains("n=5"));
        assert!(s.contains("max=100"));
        assert_eq!(summarize_latencies("y", &[]), "y: (no samples)");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = histogram(&[0, 1, 10, 1000], 10, 3);
        assert!(h.contains("beyond range"));
        assert!(histogram(&[], 10, 3).contains("empty"));
    }

    #[test]
    fn shape_check_reports() {
        assert!(shape_check("t", true, "d"));
        assert!(!shape_check("t", false, "d"));
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn export_flags_extract_both_forms_and_leave_the_rest() {
        let mut a = args(&[
            "--samples",
            "9",
            "--trace-out",
            "t.json",
            "--metrics-out=m.jsonl",
        ]);
        let flags = ExportFlags::extract(&mut a).expect("well-formed flags");
        assert_eq!(
            flags.trace_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        assert_eq!(
            flags.metrics_out.as_deref(),
            Some(std::path::Path::new("m.jsonl"))
        );
        assert!(flags.active());
        assert_eq!(a, args(&["--samples", "9"]));
    }

    #[test]
    fn dangling_flag_is_an_error_not_an_exit() {
        let mut a = args(&["--trace-out"]);
        let err = ExportFlags::extract(&mut a).expect_err("dangling flag rejected");
        assert_eq!(
            err,
            ArgError::MissingValue {
                flag: "--trace-out".into()
            }
        );
        // A following flag must not be swallowed as the value either.
        let mut a = args(&["--metrics-out", "--jobs", "2"]);
        assert!(ExportFlags::extract(&mut a).is_err());
        assert!(err.to_string().contains("--trace-out"));
    }

    #[test]
    fn jobs_flag_parses_and_validates() {
        let mut a = args(&["--jobs", "4", "x"]);
        assert_eq!(extract_jobs(&mut a), Ok(Some(4)));
        assert_eq!(a, args(&["x"]));
        let mut a = args(&["--jobs=2"]);
        assert_eq!(extract_jobs(&mut a), Ok(Some(2)));
        let mut a = args(&[]);
        assert_eq!(extract_jobs(&mut a), Ok(None));
        let mut a = args(&["--jobs", "0"]);
        assert!(extract_jobs(&mut a).is_err());
        let mut a = args(&["--jobs", "many"]);
        let err = extract_jobs(&mut a).expect_err("non-numeric rejected");
        assert!(err.to_string().contains("worker count"));
    }
}
