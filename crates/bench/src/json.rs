//! A minimal JSON reader for the perf-regression harness.
//!
//! `perf_bench` emits `BENCH_replay.json` and CI must fail on a missing
//! or malformed emit. The workspace deliberately carries no serde-style
//! dependency, so this module implements just enough of RFC 8259 to
//! parse the bench schema back and let the validator walk it: objects,
//! arrays, strings (with escapes), numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the bench schema).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walks a `.`-separated path of object keys.
    pub fn path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, k| v.get(k))
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in the bench schema;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape \\{}", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_shapes() {
        let v = parse(r#"{"schema":"v1","w":{"fig10":{"speedup":3.5,"iters":4}},"ok":true}"#)
            .expect("well-formed");
        assert_eq!(v.path("w.fig10.speedup").and_then(Json::as_num), Some(3.5));
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("v1"));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.path("w.missing"), None);
    }

    #[test]
    fn parses_arrays_numbers_and_escapes() {
        let v = parse(r#"[1, -2.5e3, "a\"b\n", null, false]"#).expect("well-formed");
        let Json::Arr(items) = v else { panic!("array") };
        assert_eq!(items[1], Json::Num(-2500.0));
        assert_eq!(items[2], Json::Str("a\"b\n".into()));
        assert_eq!(items[3], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse("{oops}").expect_err("bare key");
        assert!(err.to_string().contains("byte 1"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "a\"b\\c\nd\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(raw));
        let v = parse(&doc).expect("escaped string parses");
        assert_eq!(v.get("k").and_then(Json::as_str), Some(raw));
    }
}
