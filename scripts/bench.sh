#!/usr/bin/env sh
# Regenerates the perf trajectory point: runs the full-size perf_bench
# workloads (fig10 replay throughput cold vs checkpointed+fast-forward,
# table1 sweep points/sec, sec8 plan validations/sec) and rewrites
# BENCH_replay.json at the repo root. Run from the repo root on a quiet
# machine; the binary itself fails if the fig10 warm/cold speedup drops
# below the 3x regression floor.
set -eu

echo "== cargo build --release -p microscope-bench =="
cargo build --release -p microscope-bench

echo "== perf_bench (full) =="
./target/release/perf_bench --out BENCH_replay.json

echo "== schema check =="
./target/release/perf_bench --validate BENCH_replay.json

echo "bench OK — BENCH_replay.json updated"
