#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, build, tests. Run from the repo root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "CI OK"
