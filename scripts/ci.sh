#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, build, tests. Run from the repo root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo check (missing_docs promoted to deny) =="
# The workspace lint table sets missing_docs = "warn"; CI refuses it.
RUSTFLAGS="-D missing_docs" cargo check --workspace --all-targets

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== sweep smoke: ablate_walk --jobs 2 =="
# A 5-point sweep fanned over 2 workers; exercises the parallel engine and
# the shape checks end-to-end in well under a second.
cargo run -q --release -p microscope-bench --bin ablate_walk -- --jobs 2

echo "== analyzer smoke: sec8_analyze --audit-defenses =="
# Static plans for all 8 victims, simulator confirmation for 4, and the
# fence audit (zero open windows + no replay amplification) — the
# binary's own shape checks gate the exit code.
cargo run -q --release -p microscope-bench --bin sec8_analyze -- --audit-defenses --jobs 2

echo "== analyzer soundness property =="
cargo test -q --release --test analyze_soundness

echo "== perf bench smoke + BENCH_replay.json schema =="
# Shrunken workloads of the perf-regression harness, written to a scratch
# path so CI never dirties the committed baseline, then schema-validated.
# A missing or malformed emit fails the build; the full-size run (and the
# 3x replays/sec regression gate) is scripts/bench.sh.
BENCH_TMP="${TMPDIR:-/tmp}/BENCH_replay.smoke.json"
rm -f "$BENCH_TMP"
cargo run -q --release -p microscope-bench --bin perf_bench -- --smoke --out "$BENCH_TMP"
test -s "$BENCH_TMP" || { echo "perf_bench emitted nothing" >&2; exit 1; }
cargo run -q --release -p microscope-bench --bin perf_bench -- --validate "$BENCH_TMP"

echo "== checkpoint capture regression gate (3x vs committed baseline) =="
# Capture throughput is footprint-independent (the whole point of the CoW
# engine), so even the smoke run must land within 3x of the committed
# full-mode baseline; a bigger gap means capture went O(footprint) again.
extract_capture_rate() {
    awk -F': ' '/"checkpoint_capture_per_sec"/ { gsub(/[ ,]/, "", $2); print $2 }' "$1"
}
committed=$(extract_capture_rate BENCH_replay.json)
smoke=$(extract_capture_rate "$BENCH_TMP")
test -n "$committed" || { echo "BENCH_replay.json lacks checkpoint_capture_per_sec" >&2; exit 1; }
test -n "$smoke" || { echo "smoke emit lacks checkpoint_capture_per_sec" >&2; exit 1; }
awk -v c="$committed" -v s="$smoke" 'BEGIN {
    if (s * 3 < c) {
        printf "error: smoke checkpoint_capture_per_sec %.0f is more than 3x below the committed %.0f\n", s, c
        exit 1
    }
    printf "capture rate ok: smoke %.0f/s vs committed %.0f/s\n", s, c
}' || exit 1
rm -f "$BENCH_TMP"
# The committed baseline at the repo root must stay parseable too.
cargo run -q --release -p microscope-bench --bin perf_bench -- --validate BENCH_replay.json

echo "== examples use the execute(RunRequest) API =="
# The run/rerun family is deprecated shims only; nothing user-facing may
# still call it.
if grep -nE '\.(run|rerun)\([0-9]|_until_monitor_done\(|run_cross_checked\(' examples/*.rs; then
    echo "error: examples still call deprecated AttackSession run* methods" >&2
    exit 1
fi

echo "CI OK"
