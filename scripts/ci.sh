#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, build, tests. Run from the repo root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== sweep smoke: ablate_walk --jobs 2 =="
# A 5-point sweep fanned over 2 workers; exercises the parallel engine and
# the shape checks end-to-end in well under a second.
cargo run -q --release -p microscope-bench --bin ablate_walk -- --jobs 2

echo "CI OK"
